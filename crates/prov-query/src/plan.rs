//! Logical plans and EXPLAIN / EXPLAIN ANALYZE for PQL.
//!
//! §2.2 frames provenance querying as a storage-strategy vs.
//! query-efficiency trade-off, but an evaluator alone keeps that trade-off
//! invisible. This module makes it inspectable, database-style:
//!
//! * [`Plan::of`] derives an explicit logical operator tree from a parsed
//!   [`Query`] (`provctl explain` renders it);
//! * [`analyze`] executes the plan against a [`PqlEngine`], timing every
//!   operator and attributing store accesses to it via
//!   [`StatsSnapshot`] deltas of the engine's counted access layer
//!   (EXPLAIN ANALYZE). The executor reproduces `PqlEngine::eval_query`
//!   exactly — same traversal rules, same result order — which the
//!   plan/eval equivalence property test pins down;
//! * [`analyze_store`] runs the queries that map onto the backend-neutral
//!   [`ProvenanceStore`] surface against *any* backend, reporting the
//!   per-operator access counts of that backend's [`StoreStats`] recorder
//!   — the same question answered four ways, with the work itemized.

use crate::ast::*;
use crate::error::PqlError;
use crate::eval::{PNode, PqlEngine, QueryResult, ScanItem};
use prov_store::{ProvenanceStore, StatsSnapshot};
use std::collections::BTreeSet;
use std::collections::VecDeque;
use std::time::Instant;

/// A logical plan operator.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanOp {
    /// Resolve the query's anchor node (keyed lookup).
    Anchor {
        /// The anchor.
        target: Target,
    },
    /// Breadth-first closure from the anchor.
    Traverse {
        /// Up- or downstream.
        direction: Direction,
        /// Optional depth bound (edges).
        depth: Option<usize>,
    },
    /// Enumerate all entities of a class (full scan).
    Scan {
        /// The entity class.
        entity: Entity,
    },
    /// Keep rows satisfying a condition.
    Filter {
        /// The condition (DNF).
        filter: Condition,
    },
    /// Depth-first enumeration of simple paths between two anchors.
    EnumeratePaths {
        /// Maximum path length in edges (default applied).
        max_len: usize,
    },
    /// Materialize result rows (metadata reads).
    Collect,
    /// Count rows instead of materializing them.
    CountRows,
    /// Probe a secondary index instead of scanning: the union of the
    /// postings for the chosen `(field = value)` keys, in scan order.
    /// Produced only by the optimizer (see [`crate::optimize`]).
    IndexLookup {
        /// The entity class the index covers.
        entity: Entity,
        /// The probed `(field, value)` keys, one per disjunct.
        keys: Vec<(Field, String)>,
    },
    /// Answer a trivial count from stored metadata (no scan). Produced only
    /// by the optimizer.
    MetaCount {
        /// The entity class counted.
        entity: Entity,
    },
    /// Single-step adjacency probe replacing a depth-1 traversal. Produced
    /// only by the optimizer.
    NeighborProbe {
        /// Up- or downstream.
        direction: Direction,
    },
    /// Fan the child operator out across the shards of a sharded engine
    /// and merge the partial streams (union / count aggregation / frontier
    /// exchange). Produced only by the sharded engine (see
    /// [`crate::sharded`]); EXPLAIN ANALYZE adds one child row per shard.
    ScatterGather {
        /// Number of shards the child runs on.
        shards: usize,
    },
}

impl PlanOp {
    /// Human-readable operator label, e.g. `Traverse (upstream, depth ≤ 3)`.
    pub fn label(&self) -> String {
        match self {
            PlanOp::Anchor { target } => format!("Anchor ({target})"),
            PlanOp::Traverse { direction, depth } => {
                let dir = match direction {
                    Direction::Upstream => "upstream",
                    Direction::Downstream => "downstream",
                };
                match depth {
                    Some(d) => format!("Traverse ({dir}, depth <= {d})"),
                    None => format!("Traverse ({dir})"),
                }
            }
            PlanOp::Scan { entity } => format!("Scan ({entity})"),
            PlanOp::Filter { filter } => format!("Filter ({filter})"),
            PlanOp::EnumeratePaths { max_len } => {
                format!("EnumeratePaths (simple, max {max_len} edges)")
            }
            PlanOp::Collect => "Collect".to_string(),
            PlanOp::CountRows => "CountRows".to_string(),
            PlanOp::IndexLookup { entity, keys } => {
                let keys = keys
                    .iter()
                    .map(|(f, v)| format!("{f} = \"{v}\""))
                    .collect::<Vec<_>>()
                    .join(" | ");
                format!("IndexLookup ({entity}: {keys})")
            }
            PlanOp::MetaCount { entity } => format!("MetaCount ({entity}) [stored cardinality]"),
            PlanOp::NeighborProbe { direction } => {
                let dir = match direction {
                    Direction::Upstream => "upstream",
                    Direction::Downstream => "downstream",
                };
                format!("NeighborProbe ({dir}) [adjacency]")
            }
            PlanOp::ScatterGather { shards } => {
                format!("ScatterGather ({shards} shards) [merge]")
            }
        }
    }
}

/// A node of the logical plan tree: an operator and its inputs.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanNode {
    /// The operator.
    pub op: PlanOp,
    /// Input operators (upstream in dataflow order).
    pub children: Vec<PlanNode>,
}

impl PlanNode {
    pub(crate) fn leaf(op: PlanOp) -> Self {
        PlanNode {
            op,
            children: Vec::new(),
        }
    }

    pub(crate) fn over(op: PlanOp, child: PlanNode) -> Self {
        PlanNode {
            op,
            children: vec![child],
        }
    }
}

/// The logical plan of a PQL query: a small operator tree, rendered
/// root-first (the root produces the final result; children are inputs).
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// The root operator.
    pub root: PlanNode,
}

impl Plan {
    /// Derive the logical plan of a parsed query.
    pub fn of(query: &Query) -> Plan {
        let root = match query {
            Query::Closure {
                direction,
                target,
                depth,
                filter,
            } => {
                let mut node = PlanNode::over(
                    PlanOp::Traverse {
                        direction: *direction,
                        depth: *depth,
                    },
                    PlanNode::leaf(PlanOp::Anchor { target: *target }),
                );
                if !filter.is_trivial() {
                    node = PlanNode::over(
                        PlanOp::Filter {
                            filter: filter.clone(),
                        },
                        node,
                    );
                }
                PlanNode::over(PlanOp::Collect, node)
            }
            Query::Count { entity, filter } | Query::List { entity, filter } => {
                let mut node = PlanNode::leaf(PlanOp::Scan { entity: *entity });
                if !filter.is_trivial() {
                    node = PlanNode::over(
                        PlanOp::Filter {
                            filter: filter.clone(),
                        },
                        node,
                    );
                }
                let top = if matches!(query, Query::Count { .. }) {
                    PlanOp::CountRows
                } else {
                    PlanOp::Collect
                };
                PlanNode::over(top, node)
            }
            Query::Paths { from, to, max_len } => PlanNode::over(
                PlanOp::Collect,
                PlanNode {
                    op: PlanOp::EnumeratePaths {
                        max_len: max_len.unwrap_or(16),
                    },
                    children: vec![
                        PlanNode::leaf(PlanOp::Anchor { target: *from }),
                        PlanNode::leaf(PlanOp::Anchor { target: *to }),
                    ],
                },
            ),
        };
        Plan { root }
    }

    /// Render the plan as an indented tree, root first.
    pub fn render(&self) -> String {
        let mut out = String::new();
        render_node(&self.root, 0, &mut |line| {
            out.push_str(&line);
            out.push('\n');
        });
        out
    }

    /// The operators in render order with their tree depths.
    pub(crate) fn flatten(&self) -> Vec<(usize, PlanOp)> {
        let mut out = Vec::new();
        fn walk(n: &PlanNode, depth: usize, out: &mut Vec<(usize, PlanOp)>) {
            out.push((depth, n.op.clone()));
            for c in &n.children {
                walk(c, depth + 1, out);
            }
        }
        walk(&self.root, 0, &mut out);
        out
    }
}

fn render_node(n: &PlanNode, depth: usize, emit: &mut impl FnMut(String)) {
    let indent = if depth == 0 {
        String::new()
    } else {
        format!("{}+- ", "   ".repeat(depth - 1))
    };
    emit(format!("{indent}{}", n.op.label()));
    for c in &n.children {
        render_node(c, depth + 1, emit);
    }
}

/// Per-operator statistics from an EXPLAIN ANALYZE run.
#[derive(Debug, Clone)]
pub struct OpReport {
    /// Operator label (see [`PlanOp::label`]).
    pub label: String,
    /// Tree depth, for indented rendering.
    pub depth: usize,
    /// Rows flowing into the operator.
    pub rows_in: usize,
    /// Rows the operator produced.
    pub rows_out: usize,
    /// Cost-model row estimate for the operator's output, when the model
    /// has one (compare against `rows_out` to judge the estimate).
    pub est_rows: Option<u64>,
    /// Wall-clock time spent in the operator itself.
    pub self_micros: u64,
    /// Store accesses attributed to the operator (snapshot delta).
    pub accesses: StatsSnapshot,
}

impl OpReport {
    fn line(&self) -> String {
        let indent = if self.depth == 0 {
            String::new()
        } else {
            format!("{}+- ", "   ".repeat(self.depth - 1))
        };
        let est = self
            .est_rows
            .map(|e| format!(" est={e}"))
            .unwrap_or_default();
        format!(
            "{indent}{}  (rows={}->{}{est}, {}us; {})",
            self.label,
            self.rows_in,
            self.rows_out,
            self.self_micros,
            self.accesses.render()
        )
    }
}

/// The outcome of EXPLAIN ANALYZE over a [`PqlEngine`].
#[derive(Debug, Clone)]
pub struct Analysis {
    /// The logical plan that was executed.
    pub plan: Plan,
    /// The query result (identical to `PqlEngine::eval_query`).
    pub result: QueryResult,
    /// Total wall-clock time.
    pub total_micros: u64,
    /// Per-operator reports, in plan (render) order.
    pub ops: Vec<OpReport>,
}

impl Analysis {
    /// Sum of all per-operator access deltas.
    pub fn total_accesses(&self) -> StatsSnapshot {
        self.ops
            .iter()
            .fold(StatsSnapshot::default(), |acc, op| acc.merge(&op.accesses))
    }

    /// Render the annotated plan tree plus a summary line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for op in &self.ops {
            out.push_str(&op.line());
            out.push('\n');
        }
        out.push_str(&format!(
            "total: {} rows, {}us, accesses: {}\n",
            self.result.len(),
            self.total_micros,
            self.total_accesses().render()
        ));
        out
    }
}

/// Cheap cardinality statistics about an engine, from which row estimates
/// are derived. This is the cost model the optimizer ranks alternatives
/// with: scans cost their entity cardinality, index probes cost their
/// posting lengths, metadata counts cost one lookup.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CostModel {
    /// Ingested module runs.
    pub runs: u64,
    /// Known artifacts.
    pub artifacts: u64,
    /// Ingested executions.
    pub execs: u64,
    /// Dataflow edges.
    pub edges: u64,
}

impl CostModel {
    /// Snapshot the engine's cardinalities.
    pub fn of_engine(engine: &PqlEngine) -> Self {
        CostModel {
            runs: engine.run_count() as u64,
            artifacts: engine.artifact_count() as u64,
            execs: engine.exec_count() as u64,
            edges: engine.edge_count() as u64,
        }
    }

    /// Rows a full scan of the entity class produces.
    pub fn entity_rows(&self, entity: Entity) -> u64 {
        match entity {
            Entity::Runs => self.runs,
            Entity::Artifacts => self.artifacts,
            Entity::Executions => self.execs,
        }
    }

    /// Graph nodes (runs + artifacts) — the ceiling for closure sizes.
    pub fn graph_nodes(&self) -> u64 {
        self.runs + self.artifacts
    }

    /// Average adjacency-list length, rounded up.
    pub fn avg_degree(&self) -> u64 {
        let nodes = self.graph_nodes().max(1);
        self.edges.div_ceil(nodes).max(1)
    }

    /// Output-row estimates for every operator of `plan`, aligned with the
    /// plan's render order. `None` means "no estimate" (e.g. simple-path
    /// enumeration, whose output size the model does not predict).
    pub fn plan_estimates(&self, plan: &Plan) -> Vec<Option<u64>> {
        let mut out = Vec::new();
        self.walk_estimates(&plan.root, &mut out);
        out
    }

    fn walk_estimates(&self, node: &PlanNode, out: &mut Vec<Option<u64>>) -> Option<u64> {
        let slot = out.len();
        out.push(None);
        let mut input: Option<u64> = None;
        for child in &node.children {
            let e = self.walk_estimates(child, out);
            input = match (input, e) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (a, b) => a.or(b),
            };
        }
        let est = match &node.op {
            PlanOp::Anchor { .. } => Some(1),
            PlanOp::Scan { entity } => Some(self.entity_rows(*entity)),
            // The stored cardinality is known exactly at plan time, and
            // count operators report the count as their row count.
            PlanOp::MetaCount { entity } => Some(self.entity_rows(*entity)),
            PlanOp::IndexLookup { entity, keys } => {
                // Without live posting lengths, assume uniform selectivity
                // per probed key. The optimizer overrides this with exact
                // posting lengths when it builds the lookup.
                let per_key = self
                    .entity_rows(*entity)
                    .div_ceil((keys.len() as u64).max(1));
                Some(per_key.min(self.entity_rows(*entity)))
            }
            PlanOp::Traverse { depth, .. } => match depth {
                Some(d) => {
                    let mut reach = 1u64;
                    for _ in 0..*d {
                        reach = reach.saturating_mul(self.avg_degree());
                    }
                    Some(reach.min(self.graph_nodes()))
                }
                None => Some(self.graph_nodes()),
            },
            PlanOp::NeighborProbe { .. } => Some(self.avg_degree().min(self.graph_nodes())),
            // One-third selectivity is the model's generic guess for a
            // residual predicate.
            PlanOp::Filter { .. } => input.map(|i| i.div_ceil(3)),
            // The merge is row-preserving: duplicates across shards are
            // absorbed, so the child's estimate is the output ceiling.
            PlanOp::ScatterGather { .. } => input,
            PlanOp::Collect | PlanOp::CountRows => input,
            PlanOp::EnumeratePaths { .. } => None,
        };
        out[slot] = est;
        est
    }
}

/// A measured stage: runs `f`, returns its output plus (self-time µs,
/// access delta) against the engine's recorder.
pub(crate) fn measured<T>(engine: &PqlEngine, f: impl FnOnce() -> T) -> (T, u64, StatsSnapshot) {
    let before = engine.stats().snapshot();
    let t0 = Instant::now();
    let out = f();
    let micros = t0.elapsed().as_micros() as u64;
    let delta = engine.stats().snapshot().delta(&before);
    (out, micros, delta)
}

/// EXPLAIN ANALYZE: execute `query` through the logical plan, annotating
/// every operator with rows in/out, self-time, and store-access counts.
/// The result is guaranteed identical to `PqlEngine::eval_query`.
pub fn analyze(engine: &PqlEngine, query: &Query) -> Result<Analysis, PqlError> {
    let plan = Plan::of(query);
    let t_total = Instant::now();
    // Reports are first built in execution order (leaves before roots),
    // then matched back to the plan's render order.
    let mut exec_reports: Vec<(PlanOp, usize, usize, u64, StatsSnapshot)> = Vec::new();

    let result = match query {
        Query::Closure {
            direction,
            target,
            depth,
            filter,
        } => {
            let (anchor, t, d) = measured(engine, || engine.resolve_counted(*target));
            let anchor = anchor?;
            exec_reports.push((PlanOp::Anchor { target: *target }, 0, 1, t, d));

            let reverse = *direction == Direction::Upstream;
            // Same BFS as eval_query: nodes at the depth limit are included
            // but not expanded; discovery order is result order.
            let (discovered, t, dstats) = measured(engine, || {
                let mut discovered: Vec<PNode> = Vec::new();
                let mut seen: BTreeSet<PNode> = [anchor].into();
                let mut q: VecDeque<(PNode, usize)> = [(anchor, 0usize)].into();
                while let Some((n, d)) = q.pop_front() {
                    if let Some(limit) = depth {
                        if d == *limit {
                            continue;
                        }
                    }
                    for &m in engine.neighbors_counted(n, reverse) {
                        if seen.insert(m) {
                            discovered.push(m);
                            q.push_back((m, d + 1));
                        }
                    }
                }
                discovered
            });
            exec_reports.push((
                PlanOp::Traverse {
                    direction: *direction,
                    depth: *depth,
                },
                1,
                discovered.len(),
                t,
                dstats,
            ));

            let kept = if filter.is_trivial() {
                discovered
            } else {
                let rows_in = discovered.len();
                let (kept, t, d) = measured(engine, || {
                    discovered
                        .into_iter()
                        .filter(|&n| engine.item_matches(ScanItem::Node(n), filter))
                        .collect::<Vec<_>>()
                });
                exec_reports.push((
                    PlanOp::Filter {
                        filter: filter.clone(),
                    },
                    rows_in,
                    kept.len(),
                    t,
                    d,
                ));
                kept
            };

            let rows_in = kept.len();
            let (rows, t, d) = measured(engine, || {
                kept.into_iter()
                    .map(|n| engine.describe_item(ScanItem::Node(n)))
                    .collect::<Vec<_>>()
            });
            exec_reports.push((PlanOp::Collect, rows_in, rows.len(), t, d));
            QueryResult::Nodes(rows)
        }
        Query::Count { entity, filter } | Query::List { entity, filter } => {
            let (items, t, d) = measured(engine, || engine.scan_entity(*entity));
            exec_reports.push((PlanOp::Scan { entity: *entity }, 0, items.len(), t, d));

            let kept = if filter.is_trivial() {
                items
            } else {
                let rows_in = items.len();
                let (kept, t, d) = measured(engine, || {
                    items
                        .into_iter()
                        .filter(|&it| engine.item_matches(it, filter))
                        .collect::<Vec<_>>()
                });
                exec_reports.push((
                    PlanOp::Filter {
                        filter: filter.clone(),
                    },
                    rows_in,
                    kept.len(),
                    t,
                    d,
                ));
                kept
            };

            let rows_in = kept.len();
            if matches!(query, Query::Count { .. }) {
                let n = kept.len();
                exec_reports.push((PlanOp::CountRows, rows_in, n, 0, StatsSnapshot::default()));
                QueryResult::Count(n)
            } else {
                let (rows, t, d) = measured(engine, || {
                    kept.into_iter()
                        .map(|it| engine.describe_item(it))
                        .collect::<Vec<_>>()
                });
                exec_reports.push((PlanOp::Collect, rows_in, rows.len(), t, d));
                QueryResult::Nodes(rows)
            }
        }
        Query::Paths { from, to, max_len } => {
            let (a, t, d) = measured(engine, || engine.resolve_counted(*from));
            let a = a?;
            exec_reports.push((PlanOp::Anchor { target: *from }, 0, 1, t, d));
            let (b, t, d) = measured(engine, || engine.resolve_counted(*to));
            let b = b?;
            exec_reports.push((PlanOp::Anchor { target: *to }, 0, 1, t, d));

            let cap = max_len.unwrap_or(16);
            // Same DFS as eval_query: simple paths over succ edges with a
            // length budget.
            let (paths, t, d) = measured(engine, || {
                let mut paths: Vec<Vec<PNode>> = Vec::new();
                let mut stack = vec![a];
                let mut on_path: BTreeSet<PNode> = [a].into();
                dfs_counted(engine, a, b, cap, &mut stack, &mut on_path, &mut paths);
                paths
            });
            exec_reports.push((
                PlanOp::EnumeratePaths { max_len: cap },
                2,
                paths.len(),
                t,
                d,
            ));

            let rows_in = paths.len();
            let (rendered, t, d) = measured(engine, || {
                paths
                    .into_iter()
                    .map(|p| {
                        p.into_iter()
                            .map(|n| engine.describe_item(ScanItem::Node(n)))
                            .collect::<Vec<_>>()
                    })
                    .collect::<Vec<_>>()
            });
            exec_reports.push((PlanOp::Collect, rows_in, rendered.len(), t, d));
            QueryResult::Paths(rendered)
        }
    };

    let total_micros = t_total.elapsed().as_micros() as u64;
    let estimates = CostModel::of_engine(engine).plan_estimates(&plan);
    // Match execution-order reports to the plan's render order by operator
    // identity (each operator appears exactly once per anchor slot).
    let mut ops = Vec::new();
    let mut remaining = exec_reports;
    for ((depth, op), est_rows) in plan.flatten().into_iter().zip(estimates) {
        let idx = remaining
            .iter()
            .position(|(o, ..)| *o == op)
            .expect("every plan operator is executed exactly once");
        let (o, rows_in, rows_out, self_micros, accesses) = remaining.remove(idx);
        ops.push(OpReport {
            label: o.label(),
            depth,
            rows_in,
            rows_out,
            est_rows,
            self_micros,
            accesses,
        });
    }
    Ok(Analysis {
        plan,
        result,
        total_micros,
        ops,
    })
}

fn dfs_counted(
    engine: &PqlEngine,
    cur: PNode,
    to: PNode,
    budget: usize,
    stack: &mut Vec<PNode>,
    on_path: &mut BTreeSet<PNode>,
    out: &mut Vec<Vec<PNode>>,
) {
    if cur == to {
        out.push(stack.clone());
        return;
    }
    if budget == 0 {
        return;
    }
    for &n in engine.neighbors_counted(cur, false) {
        if on_path.insert(n) {
            stack.push(n);
            dfs_counted(engine, n, to, budget - 1, stack, on_path, out);
            stack.pop();
            on_path.remove(&n);
        }
    }
}

// ---- backend ANALYZE over the canned-query surface -----------------------

/// The outcome of running a (mappable) PQL query against a
/// [`ProvenanceStore`] backend with access accounting.
#[derive(Debug, Clone)]
pub struct StoreAnalysis {
    /// Backend name (`graph` / `triple` / `relational` / `log`).
    pub backend: String,
    /// Per-operator reports.
    pub ops: Vec<OpReport>,
    /// Result rows the backend produced.
    pub rows: usize,
    /// Total wall-clock time.
    pub total_micros: u64,
}

impl StoreAnalysis {
    /// Sum of all per-operator access deltas.
    pub fn total_accesses(&self) -> StatsSnapshot {
        self.ops
            .iter()
            .fold(StatsSnapshot::default(), |acc, op| acc.merge(&op.accesses))
    }

    /// Render the backend's annotated operator list plus a summary line.
    pub fn render(&self) -> String {
        let mut out = format!("backend: {}\n", self.backend);
        for op in &self.ops {
            out.push_str(&op.line());
            out.push('\n');
        }
        out.push_str(&format!(
            "total: {} rows, {}us, accesses: {}\n",
            self.rows,
            self.total_micros,
            self.total_accesses().render()
        ));
        out
    }
}

/// EXPLAIN ANALYZE against an arbitrary store backend.
///
/// Only query shapes that map onto the backend-neutral canned-query
/// surface are supported:
///
/// * `lineage of artifact H` → `lineage_runs` (upstream closure, runs);
/// * `lineage of artifact H depth 1` → `generators`;
/// * `impact of artifact H` → `derived_artifacts` (downstream closure —
///   note the store surface returns the artifact side only);
/// * `count runs` → `run_count`.
///
/// Filters, run anchors, depth bounds other than 1, `list`, and `paths`
/// exist only in the PQL engine and are rejected with an
/// [`PqlError::Eval`] naming the supported forms.
pub fn analyze_store(
    store: &dyn ProvenanceStore,
    query: &Query,
) -> Result<StoreAnalysis, PqlError> {
    let unsupported = || {
        PqlError::Eval(format!(
            "query '{query}' does not map onto the backend-neutral store surface; \
             supported forms: 'lineage of artifact H', 'lineage of artifact H depth 1', \
             'impact of artifact H', 'count runs'"
        ))
    };
    let t0 = Instant::now();
    let before = store.stats().snapshot();
    let (mut label, rows) = match query {
        Query::Closure {
            direction: Direction::Upstream,
            target: Target::Artifact(h),
            depth: None,
            filter,
        } if filter.is_trivial() => (
            "TransitiveClosure (upstream runs) [lineage_runs]".to_string(),
            store.lineage_runs(*h).len(),
        ),
        Query::Closure {
            direction: Direction::Upstream,
            target: Target::Artifact(h),
            depth: Some(1),
            filter,
        } if filter.is_trivial() => (
            "KeyedProbe (generating runs) [generators]".to_string(),
            store.generators(*h).len(),
        ),
        Query::Closure {
            direction: Direction::Downstream,
            target: Target::Artifact(h),
            depth: None,
            filter,
        } if filter.is_trivial() => (
            "TransitiveClosure (downstream artifacts) [derived_artifacts]".to_string(),
            store.derived_artifacts(*h).len(),
        ),
        Query::Count {
            entity: Entity::Runs,
            filter,
        } if filter.is_trivial() => (
            "Aggregate (count) [run_count]".to_string(),
            store.run_count(),
        ),
        _ => return Err(unsupported()),
    };
    let total_micros = t0.elapsed().as_micros() as u64;
    let accesses = store.stats().snapshot().delta(&before);
    if store.optimized() {
        label.push_str(" (indexed)");
    }
    Ok(StoreAnalysis {
        backend: store.backend_name().to_string(),
        ops: vec![OpReport {
            label,
            depth: 0,
            rows_in: 1,
            rows_out: rows,
            est_rows: None,
            self_micros: total_micros,
            accesses,
        }],
        rows,
        total_micros,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use prov_core::capture::{CaptureLevel, ProvenanceCapture};
    use prov_core::model::RetrospectiveProvenance;
    use wf_engine::synth::figure1_workflow;
    use wf_engine::{standard_registry, Executor};

    fn engine() -> (
        PqlEngine,
        RetrospectiveProvenance,
        wf_engine::synth::Figure1Nodes,
    ) {
        let (wf, nodes) = figure1_workflow(1);
        let exec = Executor::new(standard_registry());
        let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
        let r = exec.run_observed(&wf, &mut cap).unwrap();
        let retro = cap.take(r.exec).unwrap();
        let mut e = PqlEngine::new();
        e.ingest(&retro);
        (e, retro, nodes)
    }

    #[test]
    fn plan_shapes_match_query_shapes() {
        let q = parse("lineage of artifact 00000000000000ff where module = x").unwrap();
        let p = Plan::of(&q);
        let r = p.render();
        assert!(r.starts_with("Collect"));
        assert!(r.contains("Filter"));
        assert!(r.contains("Traverse (upstream)"));
        assert!(r.contains("Anchor (artifact 00000000000000ff)"));

        let q = parse("count runs").unwrap();
        let r = Plan::of(&q).render();
        assert!(r.starts_with("CountRows"));
        assert!(r.contains("Scan (runs)"));
        assert!(!r.contains("Filter"), "trivial filter elided");

        let q = parse("paths from artifact 00000000000000aa to run 0/5 max 6").unwrap();
        let r = Plan::of(&q).render();
        assert!(r.contains("EnumeratePaths (simple, max 6 edges)"));
        assert_eq!(r.matches("Anchor").count(), 2);
    }

    #[test]
    fn analyze_matches_eval_on_every_query_shape() {
        let (e, retro, nodes) = engine();
        let file = retro.produced(nodes.save_hist, "file").unwrap();
        let grid = retro.produced(nodes.load, "grid").unwrap();
        for q in [
            format!("lineage of artifact {}", file.digest()),
            format!("lineage of artifact {} depth 1", file.digest()),
            format!(
                "lineage of artifact {} where module = histogram",
                file.digest()
            ),
            format!("impact of artifact {}", grid.digest()),
            "count runs".to_string(),
            "count runs where status = failed or status = skipped".to_string(),
            "list artifacts where dtype = grid".to_string(),
            "list executions".to_string(),
            format!(
                "paths from artifact {} to artifact {}",
                grid.digest(),
                retro.produced(nodes.save_iso, "file").unwrap().digest()
            ),
        ] {
            let parsed = parse(&q).unwrap();
            let analysis = analyze(&e, &parsed).unwrap();
            let plain = e.eval_query(&parsed).unwrap();
            assert_eq!(analysis.result, plain, "divergence on {q}");
        }
    }

    #[test]
    fn analyze_attributes_accesses_to_operators() {
        let (e, retro, nodes) = engine();
        let file = retro.produced(nodes.save_hist, "file").unwrap();
        let q = parse(&format!(
            "lineage of artifact {} where module = histogram",
            file.digest()
        ))
        .unwrap();
        let before = e.stats().snapshot();
        let analysis = analyze(&e, &q).unwrap();
        let engine_delta = e.stats().snapshot().delta(&before);
        // Exactness: per-op deltas partition the engine's total work.
        assert_eq!(analysis.total_accesses(), engine_delta);
        assert_eq!(analysis.ops.len(), 4, "Collect, Filter, Traverse, Anchor");
        let traverse = analysis
            .ops
            .iter()
            .find(|o| o.label.starts_with("Traverse"))
            .unwrap();
        assert!(traverse.accesses.edge_reads > 0);
        assert!(traverse.rows_out >= traverse.rows_in);
        let rendered = analysis.render();
        assert!(rendered.contains("total:"));
        assert!(rendered.contains("rows="));
    }

    #[test]
    fn analyze_errors_match_eval_errors() {
        let (e, ..) = engine();
        let q = parse("lineage of artifact 00000000000000aa").unwrap();
        let a = analyze(&e, &q).unwrap_err();
        let b = e.eval_query(&q).unwrap_err();
        assert_eq!(a, b);
    }

    #[test]
    fn analyze_store_reports_backend_accesses() {
        use prov_store::GraphStore;
        let (_, retro, nodes) = engine();
        let mut gs = GraphStore::new();
        gs.ingest(&retro);
        let file = retro.produced(nodes.save_hist, "file").unwrap();
        let q = parse(&format!("lineage of artifact {}", file.digest())).unwrap();
        let before = gs.stats().snapshot();
        let a = analyze_store(&gs, &q).unwrap();
        let delta = gs.stats().snapshot().delta(&before);
        assert_eq!(a.total_accesses(), delta, "op deltas == store delta");
        assert_eq!(a.backend, "graph");
        assert!(a.rows > 0);
        assert!(a.render().contains("TransitiveClosure"));
    }

    #[test]
    fn analyze_store_rejects_unmappable_queries() {
        use prov_store::GraphStore;
        let gs = GraphStore::new();
        let q = parse("list artifacts").unwrap();
        let err = analyze_store(&gs, &q).unwrap_err();
        assert!(err.to_string().contains("supported forms"));
    }
}
