//! Reproducible publications: research objects.
//!
//! §2.3: "Provenance management infrastructure and tools will have the
//! potential to transform scientific publications as we know them today" —
//! SIGMOD'08 itself introduced the experimental-repeatability requirement.
//!
//! A [`ResearchObject`] is the publishable unit: for each figure/result of
//! a paper, the full [`ProvenanceBundle`] (recipe + log), plus the authors'
//! annotations and free-text descriptions. It serializes to a single JSON
//! document, and [`ResearchObject::verify`] re-executes every bundle and
//! checks all artifact hashes — the "repeatability review" as a function
//! call.

use crate::annotation::AnnotationStore;
use crate::model::{ProspectiveProvenance, ProvenanceBundle, RetrospectiveProvenance};
use crate::repro::{verify_reproduction, ReproReport};
use serde::{Deserialize, Serialize};
use wf_engine::{ExecError, Executor};

/// One published result: a named provenance bundle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PublishedResult {
    /// Identifier within the object (e.g. `"figure-3"`, `"table-1"`).
    pub key: String,
    /// What this result shows, in the authors' words.
    pub caption: String,
    /// The recipe and the log.
    pub bundle: ProvenanceBundle,
}

/// A self-contained, verifiable companion to a publication.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResearchObject {
    /// Publication title.
    pub title: String,
    /// Authors.
    pub authors: Vec<String>,
    /// Free-text abstract / notes.
    pub description: String,
    /// The published results, in presentation order.
    pub results: Vec<PublishedResult>,
    /// The authors' annotations over any provenance subject.
    pub annotations: AnnotationStore,
}

/// The verification outcome for one published result.
#[derive(Debug)]
pub struct ResultVerification {
    /// The result key.
    pub key: String,
    /// The reproduction report.
    pub report: ReproReport,
}

impl ResearchObject {
    /// Start an empty research object.
    pub fn new(title: &str, authors: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            authors: authors.iter().map(|s| s.to_string()).collect(),
            description: String::new(),
            results: Vec::new(),
            annotations: AnnotationStore::new(),
        }
    }

    /// Attach a result: the workflow that produced it and the captured run.
    pub fn publish(
        &mut self,
        key: &str,
        caption: &str,
        prospective: ProspectiveProvenance,
        retrospective: RetrospectiveProvenance,
    ) {
        self.results.push(PublishedResult {
            key: key.to_string(),
            caption: caption.to_string(),
            bundle: ProvenanceBundle::new(prospective, retrospective),
        });
    }

    /// Look up a result by key.
    pub fn result(&self, key: &str) -> Option<&PublishedResult> {
        self.results.iter().find(|r| r.key == key)
    }

    /// Number of published results.
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// Is the object empty?
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }

    /// Re-execute every bundle with `executor` and verify all artifact
    /// hashes — the repeatability review.
    pub fn verify(&self, executor: &Executor) -> Result<Vec<ResultVerification>, ExecError> {
        let mut out = Vec::with_capacity(self.results.len());
        for r in &self.results {
            let report = verify_reproduction(
                executor,
                &r.bundle.prospective.workflow,
                &r.bundle.retrospective,
            )?;
            out.push(ResultVerification {
                key: r.key.clone(),
                report,
            });
        }
        Ok(out)
    }

    /// Did every result reproduce exactly?
    pub fn is_repeatable(&self, executor: &Executor) -> Result<bool, ExecError> {
        Ok(self.verify(executor)?.iter().all(|v| v.report.is_exact()))
    }

    /// Serialize the whole object to one JSON document.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string_pretty(self)
    }

    /// Load from JSON.
    pub fn from_json(s: &str) -> serde_json::Result<Self> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotation::Subject;
    use crate::capture::{CaptureLevel, ProvenanceCapture};
    use wf_engine::{standard_registry, Executor};

    fn object_with_fig1() -> (ResearchObject, Executor) {
        let (wf, nodes) = wf_engine::synth::figure1_workflow(1);
        let exec = Executor::new(standard_registry());
        let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
        let r = exec.run_observed(&wf, &mut cap).unwrap();
        let retro = cap.take(r.exec).unwrap();
        let mut obj = ResearchObject::new("Visualizing CT volumes", &["S. Davidson", "J. Freire"]);
        obj.annotations.annotate(
            Subject::Node(wf.id, nodes.load),
            "dataset",
            "head.120.vtk, public phantom",
            "authors",
        );
        obj.publish(
            "figure-1",
            "Histogram and smoothed isosurface of the head CT volume",
            ProspectiveProvenance::of(&wf),
            retro,
        );
        (obj, exec)
    }

    #[test]
    fn publish_and_lookup() {
        let (obj, _) = object_with_fig1();
        assert_eq!(obj.len(), 1);
        assert!(!obj.is_empty());
        let r = obj.result("figure-1").unwrap();
        assert!(r.caption.contains("isosurface"));
        assert!(obj.result("figure-9").is_none());
    }

    #[test]
    fn verification_passes_for_faithful_object() {
        let (obj, exec) = object_with_fig1();
        assert!(obj.is_repeatable(&exec).unwrap());
        let vs = obj.verify(&exec).unwrap();
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].key, "figure-1");
        assert_eq!(vs[0].report.fidelity(), 1.0);
    }

    #[test]
    fn verification_fails_for_doctored_object() {
        let (mut obj, exec) = object_with_fig1();
        // Doctor a recorded artifact hash — a result the recipe does not
        // actually produce.
        let retro = &mut obj.results[0].bundle.retrospective;
        let last = retro.runs.last_mut().unwrap();
        last.outputs[0].1 ^= 0xdead_beef;
        assert!(!obj.is_repeatable(&exec).unwrap());
        let vs = obj.verify(&exec).unwrap();
        assert!(vs[0].report.fidelity() < 1.0);
    }

    #[test]
    fn research_object_roundtrips_json() {
        let (obj, exec) = object_with_fig1();
        let json = obj.to_json().unwrap();
        let back = ResearchObject::from_json(&json).unwrap();
        assert_eq!(back, obj);
        // A downloaded research object verifies on the reviewer's machine.
        assert!(back.is_repeatable(&exec).unwrap());
        assert_eq!(back.annotations.len(), 1);
    }

    #[test]
    fn multi_result_objects() {
        let (mut obj, exec) = object_with_fig1();
        let wf2 = wf_engine::synth::challenge_workflow(2, 2, 1);
        let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
        let r = exec.run_observed(&wf2, &mut cap).unwrap();
        obj.publish(
            "figure-2",
            "fMRI atlas pipeline",
            ProspectiveProvenance::of(&wf2),
            cap.take(r.exec).unwrap(),
        );
        assert_eq!(obj.len(), 2);
        assert!(obj.is_repeatable(&exec).unwrap());
    }
}
