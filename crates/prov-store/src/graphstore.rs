//! The native provenance graph store.
//!
//! This is the backend "designed for provenance" the tutorial says existing
//! standard-language stores are not: nodes are artifacts and runs,
//! adjacency lists are materialized in both directions, and lineage is a
//! direct graph traversal — no joins, no pattern matching.
//!
//! Artifacts are global (keyed by content hash), so ingesting several
//! executions automatically connects provenance *across* runs whenever one
//! run consumed what another produced.

use crate::api::{sort_artifacts, sort_runs, Frontier, ProvenanceStore, RunRef};
use crate::stats::StoreStats;
use prov_core::model::{ArtifactHash, RetrospectiveProvenance};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};

/// Interned node of the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum GNode {
    Artifact(ArtifactHash),
    Run(RunRef),
}

/// Metadata kept per run.
#[derive(Debug, Clone)]
struct RunMeta {
    identity: String,
}

/// The adjacency-indexed provenance graph store.
#[derive(Debug, Default)]
pub struct GraphStore {
    index: HashMap<GNode, usize>,
    nodes: Vec<GNode>,
    succ: Vec<Vec<usize>>, // cause -> effect (dataflow direction)
    pred: Vec<Vec<usize>>,
    runs: HashMap<RunRef, RunMeta>,
    /// Secondary aggregate index: run count per module identity, kept
    /// current on ingest so the optimized Q4 path never scans `runs`.
    module_counts: BTreeMap<String, usize>,
    edge_count: usize,
    optimized: AtomicBool,
    stats: StoreStats,
}

impl GraphStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    fn intern(&mut self, n: GNode) -> usize {
        if let Some(&i) = self.index.get(&n) {
            return i;
        }
        let i = self.nodes.len();
        self.nodes.push(n);
        self.succ.push(Vec::new());
        self.pred.push(Vec::new());
        self.index.insert(n, i);
        i
    }

    fn add_edge(&mut self, from: usize, to: usize) {
        if !self.succ[from].contains(&to) {
            self.succ[from].push(to);
            self.pred[to].push(from);
            self.edge_count += 1;
        }
    }

    /// Number of nodes (runs + artifacts).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// The module identity of a run, if ingested.
    pub fn run_identity(&self, run: RunRef) -> Option<&str> {
        self.runs.get(&run).map(|m| m.identity.as_str())
    }

    fn closure(&self, start: GNode, reverse: bool) -> Vec<GNode> {
        self.stats.add_keyed_lookups(1);
        let Some(&s) = self.index.get(&start) else {
            return Vec::new();
        };
        let mut seen = vec![false; self.nodes.len()];
        seen[s] = true;
        let mut q = VecDeque::from([s]);
        let mut out = Vec::new();
        while let Some(u) = q.pop_front() {
            self.stats.add_node_reads(1);
            let next = if reverse {
                &self.pred[u]
            } else {
                &self.succ[u]
            };
            self.stats.add_edge_reads(next.len() as u64);
            for &v in next {
                if !seen[v] {
                    seen[v] = true;
                    out.push(self.nodes[v]);
                    q.push_back(v);
                }
            }
        }
        out
    }
}

impl ProvenanceStore for GraphStore {
    fn backend_name(&self) -> &'static str {
        "graph"
    }

    fn stats(&self) -> &StoreStats {
        &self.stats
    }

    fn ingest(&mut self, retro: &RetrospectiveProvenance) {
        for run in &retro.runs {
            let rref: RunRef = (retro.exec, run.node);
            let prev = self.runs.insert(
                rref,
                RunMeta {
                    identity: run.identity.clone(),
                },
            );
            match prev {
                None => *self.module_counts.entry(run.identity.clone()).or_default() += 1,
                Some(old) if old.identity != run.identity => {
                    if let Some(c) = self.module_counts.get_mut(&old.identity) {
                        *c -= 1;
                        if *c == 0 {
                            self.module_counts.remove(&old.identity);
                        }
                    }
                    *self.module_counts.entry(run.identity.clone()).or_default() += 1;
                }
                Some(_) => {}
            }
            let r = self.intern(GNode::Run(rref));
            for (_, h) in &run.inputs {
                let a = self.intern(GNode::Artifact(*h));
                self.add_edge(a, r);
            }
            for (_, h) in &run.outputs {
                let a = self.intern(GNode::Artifact(*h));
                self.add_edge(r, a);
            }
        }
    }

    fn generators(&self, artifact: ArtifactHash) -> Vec<RunRef> {
        self.stats.add_keyed_lookups(1);
        let Some(&i) = self.index.get(&GNode::Artifact(artifact)) else {
            return Vec::new();
        };
        self.stats.add_node_reads(1);
        self.stats.add_edge_reads(self.pred[i].len() as u64);
        sort_runs(
            self.pred[i]
                .iter()
                .filter_map(|&p| match self.nodes[p] {
                    GNode::Run(r) => Some(r),
                    GNode::Artifact(_) => None,
                })
                .collect(),
        )
    }

    fn lineage_runs(&self, artifact: ArtifactHash) -> Vec<RunRef> {
        sort_runs(
            self.closure(GNode::Artifact(artifact), true)
                .into_iter()
                .filter_map(|n| match n {
                    GNode::Run(r) => Some(r),
                    GNode::Artifact(_) => None,
                })
                .collect(),
        )
    }

    fn derived_artifacts(&self, artifact: ArtifactHash) -> Vec<ArtifactHash> {
        sort_artifacts(
            self.closure(GNode::Artifact(artifact), false)
                .into_iter()
                .filter_map(|n| match n {
                    GNode::Artifact(h) => Some(h),
                    GNode::Run(_) => None,
                })
                .collect(),
        )
    }

    fn expand_frontier(&self, seeds: &[ArtifactHash], upstream: bool) -> Frontier {
        // The multi-seed generalization of `closure`: one BFS from all
        // seeds at once, partitioning reached nodes by kind.
        let mut out = Frontier::default();
        let mut seen = vec![false; self.nodes.len()];
        let mut q = VecDeque::new();
        for &h in seeds {
            self.stats.add_keyed_lookups(1);
            if let Some(&i) = self.index.get(&GNode::Artifact(h)) {
                if !seen[i] {
                    seen[i] = true;
                    q.push_back(i);
                }
            }
        }
        while let Some(u) = q.pop_front() {
            self.stats.add_node_reads(1);
            let next = if upstream {
                &self.pred[u]
            } else {
                &self.succ[u]
            };
            self.stats.add_edge_reads(next.len() as u64);
            for &v in next {
                if !seen[v] {
                    seen[v] = true;
                    match self.nodes[v] {
                        GNode::Run(r) => out.runs.push(r),
                        GNode::Artifact(h) => out.artifacts.push(h),
                    }
                    q.push_back(v);
                }
            }
        }
        out
    }

    fn adopt_stats(&mut self, stats: &StoreStats) {
        self.stats = stats.clone();
    }

    fn runs_per_module(&self) -> Vec<(String, usize)> {
        if self.optimized.load(Ordering::Relaxed) {
            // The aggregate is maintained on ingest: answering is one
            // keyed read of the index, no scan over `runs`.
            self.stats.add_keyed_lookups(1);
            self.stats.add_node_reads(self.module_counts.len() as u64);
            return self
                .module_counts
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect();
        }
        self.stats.add_scans(1);
        self.stats.add_node_reads(self.runs.len() as u64);
        let mut counts: std::collections::BTreeMap<&str, usize> = Default::default();
        for meta in self.runs.values() {
            *counts.entry(meta.identity.as_str()).or_default() += 1;
        }
        counts
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect()
    }

    fn run_count(&self) -> usize {
        if self.optimized.load(Ordering::Relaxed) {
            // Served from map metadata either way, but the optimized path
            // reports itself as one keyed read so ANALYZE stays exact.
            self.stats.add_keyed_lookups(1);
        }
        self.runs.len()
    }

    fn set_optimized(&self, on: bool) {
        self.optimized.store(on, Ordering::Relaxed);
    }

    fn optimized(&self) -> bool {
        self.optimized.load(Ordering::Relaxed)
    }

    fn approx_bytes(&self) -> usize {
        let node_bytes = self.nodes.len() * (std::mem::size_of::<GNode>() + 16);
        let edge_bytes = self.edge_count * 2 * std::mem::size_of::<usize>();
        let meta_bytes: usize = self
            .runs
            .values()
            .map(|m| m.identity.len() + std::mem::size_of::<RunRef>() + 16)
            .sum();
        node_bytes + edge_bytes + meta_bytes
    }
}

/// Cross-execution helper used by tests: all executions whose runs touch an
/// artifact.
pub fn executions_touching(store: &GraphStore, artifact: ArtifactHash) -> BTreeSet<u64> {
    let mut out: BTreeSet<u64> = store
        .lineage_runs(artifact)
        .into_iter()
        .map(|(e, _)| e.0)
        .collect();
    out.extend(store.generators(artifact).into_iter().map(|(e, _)| e.0));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use prov_core::capture::{CaptureLevel, ProvenanceCapture};
    use wf_engine::synth::figure1_workflow;
    use wf_engine::{standard_registry, Executor};

    fn fig1_retro() -> (RetrospectiveProvenance, wf_engine::synth::Figure1Nodes) {
        let (wf, nodes) = figure1_workflow(1);
        let exec = Executor::new(standard_registry());
        let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
        let r = exec.run_observed(&wf, &mut cap).unwrap();
        (cap.take(r.exec).unwrap(), nodes)
    }

    #[test]
    fn ingest_and_generators() {
        let (retro, nodes) = fig1_retro();
        let mut s = GraphStore::new();
        s.ingest(&retro);
        let grid = retro.produced(nodes.load, "grid").unwrap().hash;
        let gens = s.generators(grid);
        assert_eq!(gens, vec![(retro.exec, nodes.load)]);
        assert_eq!(
            s.run_identity((retro.exec, nodes.load)),
            Some("LoadVolume@1")
        );
    }

    #[test]
    fn lineage_crosses_the_whole_branch() {
        let (retro, nodes) = fig1_retro();
        let mut s = GraphStore::new();
        s.ingest(&retro);
        let hist_file = retro.produced(nodes.save_hist, "file").unwrap().hash;
        let lineage = s.lineage_runs(hist_file);
        let node_ids: Vec<_> = lineage.iter().map(|(_, n)| *n).collect();
        assert!(node_ids.contains(&nodes.load));
        assert!(node_ids.contains(&nodes.hist));
        assert!(!node_ids.contains(&nodes.iso));
    }

    #[test]
    fn derived_artifacts_cover_downstream() {
        let (retro, nodes) = fig1_retro();
        let mut s = GraphStore::new();
        s.ingest(&retro);
        let grid = retro.produced(nodes.load, "grid").unwrap().hash;
        let derived = s.derived_artifacts(grid);
        let hist_file = retro.produced(nodes.save_hist, "file").unwrap().hash;
        assert!(derived.contains(&hist_file));
    }

    #[test]
    fn runs_per_module_counts() {
        let (retro, _) = fig1_retro();
        let mut s = GraphStore::new();
        s.ingest(&retro);
        let counts = s.runs_per_module();
        assert!(counts.contains(&("SaveFile@1".to_string(), 2)));
        assert!(counts.contains(&("Histogram@1".to_string(), 1)));
        assert_eq!(s.run_count(), 8);
    }

    #[test]
    fn cross_execution_join_on_artifact_hash() {
        // Two executions of the same workflow produce the same artifacts:
        // the store unifies them, and lineage spans both runs.
        let (wf, nodes) = figure1_workflow(1);
        let exec = Executor::new(standard_registry());
        let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
        let r1 = exec.run_observed(&wf, &mut cap).unwrap();
        let r2 = exec.run_observed(&wf, &mut cap).unwrap();
        let p1 = cap.take(r1.exec).unwrap();
        let p2 = cap.take(r2.exec).unwrap();
        let mut s = GraphStore::new();
        s.ingest(&p1);
        s.ingest(&p2);
        let grid = p1.produced(nodes.load, "grid").unwrap().hash;
        assert_eq!(s.generators(grid).len(), 2, "one generator per execution");
        let touching = executions_touching(&s, grid);
        assert_eq!(touching.len(), 2);
    }

    #[test]
    fn unknown_artifact_queries_are_empty() {
        let s = GraphStore::new();
        assert!(s.generators(42).is_empty());
        assert!(s.lineage_runs(42).is_empty());
        assert!(s.derived_artifacts(42).is_empty());
        assert_eq!(s.run_count(), 0);
    }

    #[test]
    fn ingest_is_idempotent_for_edges() {
        let (retro, _) = fig1_retro();
        let mut s = GraphStore::new();
        s.ingest(&retro);
        let e1 = s.edge_count();
        let n1 = s.node_count();
        s.ingest(&retro);
        assert_eq!(s.edge_count(), e1);
        assert_eq!(s.node_count(), n1);
    }

    #[test]
    fn stats_count_query_work_but_not_ingest() {
        let (retro, nodes) = fig1_retro();
        let mut s = GraphStore::new();
        s.ingest(&retro);
        assert_eq!(s.stats().snapshot().total_reads(), 0, "ingest not counted");
        let grid = retro.produced(nodes.load, "grid").unwrap().hash;
        let before = s.stats().snapshot();
        let _ = s.generators(grid);
        let d = s.stats().snapshot().delta(&before);
        assert_eq!(d.keyed_lookups, 1);
        assert_eq!(d.node_reads, 1);
        assert!(d.edge_reads >= 1);
        let before = s.stats().snapshot();
        let _ = s.lineage_runs(grid);
        let d = s.stats().snapshot().delta(&before);
        assert!(d.node_reads > 1, "closure visits several nodes");
    }

    #[test]
    fn optimized_runs_per_module_matches_naive_without_scanning() {
        let (retro, _) = fig1_retro();
        let mut s = GraphStore::new();
        s.ingest(&retro);
        assert!(!s.optimized(), "naive paths are the default");
        let naive = s.runs_per_module();
        s.set_optimized(true);
        assert!(s.optimized());
        let before = s.stats().snapshot();
        let fast = s.runs_per_module();
        let d = s.stats().snapshot().delta(&before);
        assert_eq!(fast, naive, "index answer must equal the scan answer");
        assert_eq!(d.scans, 0, "optimized Q4 does not scan");
        assert_eq!(d.keyed_lookups, 1);
        // Re-ingesting the same execution must not inflate the maintained
        // aggregate (runs dedup by RunRef).
        s.ingest(&retro);
        assert_eq!(s.runs_per_module(), naive);
    }

    #[test]
    fn approx_bytes_grows_with_content() {
        let (retro, _) = fig1_retro();
        let mut s = GraphStore::new();
        let empty = s.approx_bytes();
        s.ingest(&retro);
        assert!(s.approx_bytes() > empty);
    }
}
